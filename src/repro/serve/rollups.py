"""Incremental aggregation into read-optimized rollup tables.

The batch pipeline (``repro stats``, the scan tables) answers every
question by scanning the raw crawl tables. That is fine for a one-shot
report but not for a serving layer: the north-star read path answers
the same aggregate queries thousands of times per second, and a
``COUNT(*)`` over millions of ``javascript`` rows per request does not
survive contact with that. This module folds per-visit verdicts,
detector counts, category rollups, and corpus occurrence stats into
small ``rollups_*`` tables maintained *incrementally* as the crawl
writes — each served query then reads a handful of pre-aggregated rows.

Correctness story (the whole point, per the paper's gullibility
lesson): the rollups are never trusted on faith. Every aggregate has a
*batch twin* computed straight from the raw tables (:func:`batch_state`)
and the differential harness pins the two byte-for-byte across live
incremental maintenance, cold backfill (:func:`build`), resume, and
retraction paths. The maintenance hooks mirror every mutation path of
:class:`repro.openwpm.storage.StorageController` — including the
retractions PR 3 introduced for lease races (``delete_visit``,
``retract_failed_visits``, ``retract_quarantine``), which *decrement*
rollups so a voided verdict disappears from served answers too.

Table layout (``ROLLUP_SCHEMA_VERSION`` gates compatibility; all
tables are WITHOUT ROWID with natural keys, so their physical content
is a pure function of the aggregate state, not of insertion order):

``rollups_meta``          key/value: schema version, state, generation
``rollups_totals``        per-table row counts (the ``stats`` db section)
``rollups_sites``         per-site verdict counters (one row per site)
``rollups_symbols``       detector counts: (symbol, operation) -> n
``rollups_resources``     category rollup: (resource_type, 3rd-party) -> n
``rollups_cookie_hosts``  cookie rows per host
``rollups_crashes``       crash_history rows per action
``rollups_drop_reasons``  failed_visits rows per reason
``rollups_scripts``       corpus occurrences: content_hash -> refs
``rollups_script_sites``  corpus occurrences per (hash, site)

The *generation* counter in ``rollups_meta`` increments on every
rollup mutation; the serving layer keys its response cache under it, so
a cached answer can never outlive the aggregate state it was computed
from. Generation counts operations, not state — it is excluded from
cross-run database comparisons (CI treats ``rollups_meta`` as volatile,
like ``telemetry``).

``state`` is ``fresh`` (rollups trusted) or ``stale`` (raw tables have
moved without maintenance — e.g. ``REPRO_ROLLUPS=off`` runs, a
schema-version bump, or a crash between a raw-table commit and its
rollup application detected by the cheap open-time consistency probe).
Stale rollups are ignored by every consumer until ``repro serve build``
rebuilds them.
"""

from __future__ import annotations

import sqlite3
from collections import Counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Bump on any incompatible change to the rollup table layout. A
#: database carrying a different version is rebuilt from scratch by
#: ``ensure_schema`` (and marked stale until then).
ROLLUP_SCHEMA_VERSION = 1

ROLLUP_TABLES = (
    "rollups_meta", "rollups_totals", "rollups_sites",
    "rollups_symbols", "rollups_resources", "rollups_cookie_hosts",
    "rollups_crashes", "rollups_drop_reasons", "rollups_scripts",
    "rollups_script_sites")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS rollups_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_totals (
    name TEXT PRIMARY KEY,
    value INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_sites (
    site_url TEXT PRIMARY KEY,
    visits INTEGER NOT NULL DEFAULT 0,
    js_rows INTEGER NOT NULL DEFAULT 0,
    http_rows INTEGER NOT NULL DEFAULT 0,
    response_rows INTEGER NOT NULL DEFAULT 0,
    cookie_rows INTEGER NOT NULL DEFAULT 0,
    third_party_requests INTEGER NOT NULL DEFAULT 0,
    webdriver_probes INTEGER NOT NULL DEFAULT 0,
    crashes INTEGER NOT NULL DEFAULT 0,
    failed INTEGER NOT NULL DEFAULT 0,
    quarantined INTEGER NOT NULL DEFAULT 0
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_symbols (
    symbol TEXT NOT NULL,
    operation TEXT NOT NULL,
    count INTEGER NOT NULL,
    PRIMARY KEY (symbol, operation)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_resources (
    resource_type TEXT NOT NULL,
    is_third_party INTEGER NOT NULL,
    count INTEGER NOT NULL,
    PRIMARY KEY (resource_type, is_third_party)
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_cookie_hosts (
    host TEXT PRIMARY KEY,
    count INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_crashes (
    action TEXT PRIMARY KEY,
    count INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_drop_reasons (
    reason TEXT PRIMARY KEY,
    count INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_scripts (
    content_hash TEXT PRIMARY KEY,
    refs INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE IF NOT EXISTS rollups_script_sites (
    content_hash TEXT NOT NULL,
    site_url TEXT NOT NULL,
    refs INTEGER NOT NULL,
    PRIMARY KEY (content_hash, site_url)
) WITHOUT ROWID;
"""

#: The per-site verdict "did a script probe the automation flag" —
#: substring match so wrapped symbols (``window.navigator.webdriver``)
#: count too. The SQL twin is ``instr(symbol, ...) > 0`` (also a
#: case-sensitive substring test), keeping both sides equivalent.
WEBDRIVER_MARKER = "navigator.webdriver"

#: rollups_totals keys, in the raw table they mirror.
TOTAL_NAMES = ("site_visits", "http_requests", "http_responses",
               "javascript", "javascript_cookies", "content",
               "crash_history", "failed_visits", "quarantined_sites")


class VisitDelta:
    """The rollup contribution of one visit, accumulated row by row.

    Fed the *exact* tuples the storage controller buffers for its
    batched INSERTs (``_BATCHED_COLUMNS`` order, leading ``visit_id``),
    so the same ``add_row`` consumes live ``record_*`` appends and
    broker-imported envelope rows alike — one code path, one
    definition of every aggregate.
    """

    __slots__ = ("tables", "symbols", "resources", "cookie_hosts",
                 "scripts", "third_party", "webdriver_probes")

    def __init__(self) -> None:
        self.tables: Counter = Counter()
        self.symbols: Counter = Counter()
        self.resources: Counter = Counter()
        self.cookie_hosts: Counter = Counter()
        self.scripts: Counter = Counter()
        self.third_party = 0
        self.webdriver_probes = 0

    def add_row(self, table: str, row: Tuple) -> None:
        self.tables[table] += 1
        if table == "http_requests":
            # (visit_id, browser_id, url, top_level_url, frame_url,
            #  method, resource_type, is_third_party, headers, post_body)
            third = int(row[7] or 0)
            self.resources[(str(row[6] or ""), 1 if third else 0)] += 1
            if third:
                self.third_party += 1
        elif table == "http_responses":
            # (visit_id, browser_id, url, status, content_type, hash)
            if row[5]:
                self.scripts[str(row[5])] += 1
        elif table == "javascript":
            # (visit_id, browser_id, top_level_url, document_url,
            #  script_url, symbol, operation, ...)
            symbol = str(row[5] or "")
            self.symbols[(symbol, str(row[6] or ""))] += 1
            if WEBDRIVER_MARKER in symbol:
                self.webdriver_probes += 1
        elif table == "javascript_cookies":
            # (visit_id, browser_id, record_type, change_cause, host, ...)
            self.cookie_hosts[str(row[4] or "")] += 1

    def is_empty(self) -> bool:
        return not (self.tables or self.third_party
                    or self.webdriver_probes)


def _meta_get(connection: sqlite3.Connection, key: str
              ) -> Optional[str]:
    row = connection.execute(
        "SELECT value FROM rollups_meta WHERE key = ?", (key,)).fetchone()
    if row is None:
        return None
    return str(row[0])


def _meta_set(connection: sqlite3.Connection, key: str,
              value: str) -> None:
    connection.execute(
        "INSERT INTO rollups_meta (key, value) VALUES (?, ?) "
        "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
        (key, value))


def rollups_present(connection: sqlite3.Connection) -> bool:
    """Does the database carry rollup tables at the current version?"""
    row = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' "
        "AND name = 'rollups_meta'").fetchone()
    if row is None:
        return False
    return _meta_get(connection, "schema_version") \
        == str(ROLLUP_SCHEMA_VERSION)


def rollups_state(connection: sqlite3.Connection) -> str:
    """``fresh``, ``stale``, or ``absent``."""
    if not rollups_present(connection):
        return "absent"
    return _meta_get(connection, "state") or "stale"


def generation(connection: sqlite3.Connection) -> int:
    """The rollup generation counter (0 when rollups are absent)."""
    try:
        value = _meta_get(connection, "generation")
    except sqlite3.OperationalError:
        return 0
    return int(value or 0)


class RollupMaintainer:
    """Keeps the rollup tables in lock-step with the raw tables.

    Owned by a :class:`StorageController`; every hook is called with
    the controller's lock held and joins whatever transaction the
    caller is in, so a rollup update commits atomically with the raw
    rows it mirrors (a crash can never land one without the other).

    When maintenance is disabled (``REPRO_ROLLUPS=off``) the hooks
    degrade to marking any existing rollups ``stale`` on the first raw
    mutation — served answers must never silently drift from ground
    truth; they go missing instead, until ``repro serve build`` runs.
    """

    def __init__(self, connection: sqlite3.Connection,
                 enabled: bool = True) -> None:
        self.connection = connection
        self.enabled = enabled
        self._stale_marked = False
        if enabled:
            self.ensure_schema()

    # -- schema / lifecycle -------------------------------------------
    def ensure_schema(self) -> None:
        """Create (or version-migrate) the rollup tables.

        A version mismatch drops and recreates them; an existing
        database that already has crawl data gets ``state = stale``
        (the backfill is the caller's explicit, potentially expensive
        decision), while a virgin database starts ``fresh`` at
        generation 0 — incremental maintenance keeps it fresh from the
        first visit on.
        """
        version = None
        if self.connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table' "
                "AND name = 'rollups_meta'").fetchone() is not None:
            version = _meta_get(self.connection, "schema_version")
        if version is not None \
                and version != str(ROLLUP_SCHEMA_VERSION):
            for table in ROLLUP_TABLES:
                self.connection.execute(f"DROP TABLE IF EXISTS {table}")
            version = None
        self.connection.executescript(_SCHEMA)
        if version is None:
            has_data = self.connection.execute(
                "SELECT 1 FROM site_visits LIMIT 1").fetchone() \
                is not None or self.connection.execute(
                "SELECT 1 FROM failed_visits LIMIT 1").fetchone() \
                is not None
            _meta_set(self.connection, "schema_version",
                      str(ROLLUP_SCHEMA_VERSION))
            _meta_set(self.connection, "state",
                      "stale" if has_data else "fresh")
            _meta_set(self.connection, "generation", "0")
            self.connection.commit()
        elif self._consistency_probe_fails():
            # A previous run died between a raw-table commit and its
            # rollup application (or wrote with maintenance off and
            # never got marked): don't trust what's here.
            _meta_set(self.connection, "state", "stale")
            self.connection.commit()

    def _consistency_probe_fails(self) -> bool:
        """Cheap open-time cross-check: headline counts must agree."""
        if rollups_state(self.connection) != "fresh":
            return False
        for table in ("site_visits", "failed_visits",
                      "quarantined_sites"):
            raw = int(self.connection.execute(
                f"SELECT COUNT(*) FROM {table}"  # noqa: S608
            ).fetchone()[0])
            row = self.connection.execute(
                "SELECT value FROM rollups_totals WHERE name = ?",
                (table,)).fetchone()
            if raw != int(row[0] if row else 0):
                return True
        return False

    def is_fresh(self) -> bool:
        if not self.enabled:
            return False
        return rollups_state(self.connection) == "fresh"

    def generation(self) -> int:
        return generation(self.connection)

    # -- shared mutation plumbing -------------------------------------
    def _active(self) -> bool:
        """Should this mutation maintain rollups (vs mark them stale)?"""
        if self.enabled:
            return True
        if not self._stale_marked:
            self._stale_marked = True
            if self.connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table' "
                    "AND name = 'rollups_meta'").fetchone() is not None:
                _meta_set(self.connection, "state", "stale")
        return False

    def _bump(self) -> None:
        self.connection.execute(
            "UPDATE rollups_meta SET value = CAST(value AS INTEGER) + 1 "
            "WHERE key = 'generation'")

    def _add_total(self, name: str, amount: int) -> None:
        if amount:
            self.connection.execute(
                "INSERT INTO rollups_totals (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "value = value + excluded.value", (name, amount))

    def _add_counter(self, table: str, keys: Tuple[str, ...],
                     items: Iterable[Tuple[Tuple, int]],
                     sign: int, value_col: str = "count") -> None:
        rows = [key + (sign * count,) for key, count in items if count]
        if not rows:
            return
        cols = ", ".join(keys)
        marks = ", ".join("?" for _ in range(len(keys) + 1))
        conflict = ", ".join(keys)
        self.connection.executemany(
            f"INSERT INTO {table} ({cols}, {value_col}) "  # noqa: S608
            f"VALUES ({marks}) ON CONFLICT({conflict}) DO UPDATE SET "
            f"{value_col} = {value_col} + excluded.{value_col}", rows)
        if sign < 0:
            self.connection.execute(
                f"DELETE FROM {table} "  # noqa: S608
                f"WHERE {value_col} <= 0")

    def _add_site(self, site_url: str, column_amounts: Dict[str, int],
                  ) -> None:
        amounts = {col: n for col, n in column_amounts.items() if n}
        if not amounts:
            return
        cols = list(amounts)
        self.connection.execute(
            "INSERT INTO rollups_sites (site_url, "
            + ", ".join(cols) + ") VALUES (?" + ", ?" * len(cols)
            + ") ON CONFLICT(site_url) DO UPDATE SET "
            + ", ".join(f"{col} = {col} + excluded.{col}"
                        for col in cols),
            (site_url,) + tuple(amounts[col] for col in cols))
        self.connection.execute(
            "DELETE FROM rollups_sites WHERE visits <= 0 "
            "AND js_rows <= 0 AND http_rows <= 0 AND response_rows <= 0 "
            "AND cookie_rows <= 0 AND crashes <= 0 AND failed <= 0 "
            "AND quarantined <= 0")

    def _apply_delta(self, site_url: str, delta: VisitDelta,
                     sign: int, visits: int = 1) -> None:
        self._add_total("site_visits", sign * visits)
        for table in ("http_requests", "http_responses", "javascript",
                      "javascript_cookies"):
            self._add_total(table, sign * delta.tables[table])
        self._add_site(site_url, {
            "visits": sign * visits,
            "js_rows": sign * delta.tables["javascript"],
            "http_rows": sign * delta.tables["http_requests"],
            "response_rows": sign * delta.tables["http_responses"],
            "cookie_rows": sign * delta.tables["javascript_cookies"],
            "third_party_requests": sign * delta.third_party,
            "webdriver_probes": sign * delta.webdriver_probes,
        })
        self._add_counter("rollups_symbols", ("symbol", "operation"),
                          delta.symbols.items(), sign)
        self._add_counter(
            "rollups_resources", ("resource_type", "is_third_party"),
            delta.resources.items(), sign)
        self._add_counter("rollups_cookie_hosts", ("host",),
                          [((host,), count) for host, count
                           in delta.cookie_hosts.items()], sign)
        self._add_counter("rollups_scripts", ("content_hash",),
                          [((digest,), count) for digest, count
                           in delta.scripts.items()], sign,
                          value_col="refs")
        self._add_counter(
            "rollups_script_sites", ("content_hash", "site_url"),
            [((digest, site_url), count) for digest, count
             in delta.scripts.items()], sign, value_col="refs")
        self._bump()

    # -- mutation hooks (called by StorageController) -----------------
    def visit_committed(self, site_url: str,
                        delta: VisitDelta) -> None:
        if self._active():
            self._apply_delta(site_url, delta, +1)

    def visit_retracted(self, visit_id: int) -> None:
        """Fold a doomed committed visit *out* before its rows go.

        Called by ``delete_visit`` while the rows still exist; the
        negative delta is derived from the database itself, through the
        same ``add_row`` accounting that folded the rows in — so the
        decrement is exactly the original increment.
        """
        if not self._active():
            return
        row = self.connection.execute(
            "SELECT site_url FROM site_visits WHERE visit_id = ?",
            (visit_id,)).fetchone()
        if row is None:
            return
        site_url = str(row[0])
        delta = VisitDelta()
        for table, columns in (
                ("http_requests",
                 "visit_id, browser_id, url, top_level_url, frame_url, "
                 "method, resource_type, is_third_party_channel, "
                 "headers, post_body"),
                ("http_responses",
                 "visit_id, browser_id, url, response_status, "
                 "content_type, content_hash"),
                ("javascript",
                 "visit_id, browser_id, top_level_url, document_url, "
                 "script_url, symbol, operation, value, arguments, "
                 "call_stack"),
                ("javascript_cookies",
                 "visit_id, browser_id, record_type, change_cause, "
                 "host, name, value, path, is_session, is_http_only, "
                 "expiry, first_party_domain, via_javascript")):
            for raw in self.connection.execute(
                    f"SELECT {columns} FROM {table} "  # noqa: S608
                    f"WHERE visit_id = ? ORDER BY id", (visit_id,)):
                delta.add_row(table, tuple(raw))
        self._apply_delta(site_url, delta, -1)

    def content_inserted(self, count: int) -> None:
        """``content`` rows that actually landed (post OR IGNORE dedup).

        Content rows are visit-less and survive aborts, so they are
        booked at flush time rather than through a visit delta.
        """
        if count and self._active():
            self._add_total("content", count)
            self._bump()

    def crash_recorded(self, site_url: str, action: str) -> None:
        if not self._active():
            return
        self._add_total("crash_history", 1)
        self._add_counter("rollups_crashes", ("action",),
                          [((str(action or ""),), 1)], +1)
        self._add_site(str(site_url or ""), {"crashes": 1})
        self._bump()

    def failed_recorded(self, site_url: str, reason: str) -> None:
        if not self._active():
            return
        self._add_total("failed_visits", 1)
        self._add_counter("rollups_drop_reasons", ("reason",),
                          [((str(reason or ""),), 1)], +1)
        self._add_site(str(site_url), {"failed": 1})
        self._bump()

    def failed_retracted(self, site_url: str) -> None:
        """Called *before* ``retract_failed_visits`` deletes the rows."""
        if not self._active():
            return
        rows = self.connection.execute(
            "SELECT reason, COUNT(*) FROM failed_visits "
            "WHERE site_url = ? GROUP BY reason", (site_url,)).fetchall()
        total = sum(int(row[1]) for row in rows)
        if not total:
            return
        self._add_total("failed_visits", -total)
        self._add_counter("rollups_drop_reasons", ("reason",),
                          [((str(row[0] or ""),), int(row[1]))
                           for row in rows], -1)
        self._add_site(site_url, {"failed": -total})
        self._bump()

    def quarantine_recorded(self, site_url: str,
                            inserted: bool) -> None:
        if inserted and self._active():
            self._add_total("quarantined_sites", 1)
            self._add_site(site_url, {"quarantined": 1})
            self._bump()

    def quarantine_retracted(self, site_url: str,
                             deleted: int) -> None:
        if deleted and self._active():
            self._add_total("quarantined_sites", -deleted)
            self._add_site(site_url, {"quarantined": -deleted})
            self._bump()


# ----------------------------------------------------------------------
# Batch twin + backfill + verification
# ----------------------------------------------------------------------
def batch_state(connection: sqlite3.Connection) -> Dict[str, Any]:
    """Every rollup aggregate recomputed from the raw tables.

    The ground truth the incremental tables are verified against and
    rebuilt from; returned as plain dicts keyed exactly like the
    rollup tables' natural keys.
    """
    def rows(sql: str) -> List[Tuple]:
        return [tuple(row) for row in connection.execute(sql)]

    totals = {}
    for table in TOTAL_NAMES:
        totals[table] = int(connection.execute(
            f"SELECT COUNT(*) FROM {table}"  # noqa: S608
        ).fetchone()[0])

    sites: Dict[str, Dict[str, int]] = {}

    def site(url: str) -> Dict[str, int]:
        return sites.setdefault(str(url), {
            "visits": 0, "js_rows": 0, "http_rows": 0,
            "response_rows": 0, "cookie_rows": 0,
            "third_party_requests": 0, "webdriver_probes": 0,
            "crashes": 0, "failed": 0, "quarantined": 0})

    for url, n in rows("SELECT site_url, COUNT(*) FROM site_visits "
                       "GROUP BY site_url"):
        site(url)["visits"] = int(n)
    joins = (
        ("js_rows", "javascript", ""),
        ("http_rows", "http_requests", ""),
        ("response_rows", "http_responses", ""),
        ("cookie_rows", "javascript_cookies", ""),
        ("third_party_requests", "http_requests",
         "WHERE t.is_third_party_channel = 1"),
        ("webdriver_probes", "javascript",
         f"WHERE instr(t.symbol, '{WEBDRIVER_MARKER}') > 0"),
    )
    for column, table, where in joins:
        for url, n in rows(
                f"SELECT sv.site_url, COUNT(*) FROM {table} t "  # noqa: S608
                f"JOIN site_visits sv ON sv.visit_id = t.visit_id "
                f"{where} GROUP BY sv.site_url"):
            site(url)[column] = int(n)
    for url, n in rows("SELECT COALESCE(site_url, ''), COUNT(*) "
                       "FROM crash_history "
                       "GROUP BY COALESCE(site_url, '')"):
        site(url)["crashes"] = int(n)
    for url, n in rows("SELECT site_url, COUNT(*) FROM failed_visits "
                       "GROUP BY site_url"):
        site(url)["failed"] = int(n)
    for url, n in rows("SELECT site_url, COUNT(*) "
                       "FROM quarantined_sites GROUP BY site_url"):
        site(url)["quarantined"] = int(n)

    return {
        "totals": totals,
        "sites": sites,
        "symbols": {
            (str(sym or ""), str(op or "")): int(n)
            for sym, op, n in rows(
                "SELECT symbol, operation, COUNT(*) FROM javascript "
                "GROUP BY symbol, operation")},
        "resources": {
            (str(rtype or ""), 1 if third else 0): int(n)
            for rtype, third, n in rows(
                "SELECT resource_type, is_third_party_channel, "
                "COUNT(*) FROM http_requests "
                "GROUP BY resource_type, is_third_party_channel")},
        "cookie_hosts": {
            str(host or ""): int(n) for host, n in rows(
                "SELECT host, COUNT(*) FROM javascript_cookies "
                "GROUP BY host")},
        "crashes": {
            str(action or ""): int(n) for action, n in rows(
                "SELECT action, COUNT(*) FROM crash_history "
                "GROUP BY action")},
        "drop_reasons": {
            str(reason or ""): int(n) for reason, n in rows(
                "SELECT reason, COUNT(*) FROM failed_visits "
                "GROUP BY reason")},
        "scripts": {
            str(digest): int(n) for digest, n in rows(
                "SELECT content_hash, COUNT(*) FROM http_responses "
                "WHERE content_hash != '' AND content_hash IS NOT NULL "
                "GROUP BY content_hash")},
        "script_sites": {
            (str(digest), str(url)): int(n)
            for digest, url, n in rows(
                "SELECT r.content_hash, sv.site_url, COUNT(*) "
                "FROM http_responses r "
                "JOIN site_visits sv ON sv.visit_id = r.visit_id "
                "WHERE r.content_hash != '' "
                "AND r.content_hash IS NOT NULL "
                "GROUP BY r.content_hash, sv.site_url")},
    }


def rollup_state(connection: sqlite3.Connection) -> Dict[str, Any]:
    """The same shape as :func:`batch_state`, read from the rollups."""
    def rows(sql: str) -> List[Tuple]:
        return [tuple(row) for row in connection.execute(sql)]

    totals = {name: 0 for name in TOTAL_NAMES}
    for name, value in rows("SELECT name, value FROM rollups_totals"):
        if name in totals:
            totals[str(name)] = int(value)
    sites: Dict[str, Dict[str, int]] = {}
    for raw in connection.execute(
            "SELECT site_url, visits, js_rows, http_rows, "
            "response_rows, cookie_rows, third_party_requests, "
            "webdriver_probes, crashes, failed, quarantined "
            "FROM rollups_sites"):
        sites[str(raw[0])] = {
            "visits": int(raw[1]), "js_rows": int(raw[2]),
            "http_rows": int(raw[3]), "response_rows": int(raw[4]),
            "cookie_rows": int(raw[5]),
            "third_party_requests": int(raw[6]),
            "webdriver_probes": int(raw[7]), "crashes": int(raw[8]),
            "failed": int(raw[9]), "quarantined": int(raw[10])}
    return {
        "totals": totals,
        "sites": sites,
        "symbols": {(str(s), str(o)): int(n) for s, o, n in rows(
            "SELECT symbol, operation, count FROM rollups_symbols")},
        "resources": {(str(r), int(t)): int(n) for r, t, n in rows(
            "SELECT resource_type, is_third_party, count "
            "FROM rollups_resources")},
        "cookie_hosts": {str(h): int(n) for h, n in rows(
            "SELECT host, count FROM rollups_cookie_hosts")},
        "crashes": {str(a): int(n) for a, n in rows(
            "SELECT action, count FROM rollups_crashes")},
        "drop_reasons": {str(r): int(n) for r, n in rows(
            "SELECT reason, count FROM rollups_drop_reasons")},
        "scripts": {str(h): int(n) for h, n in rows(
            "SELECT content_hash, refs FROM rollups_scripts")},
        "script_sites": {(str(h), str(u)): int(n) for h, u, n in rows(
            "SELECT content_hash, site_url, refs "
            "FROM rollups_script_sites")},
    }


def build(connection: sqlite3.Connection) -> Dict[str, Any]:
    """Cold backfill: rebuild every rollup table from the raw tables.

    One transaction; the generation still moves *forward* (never
    resets) so response caches keyed under the old rollups invalidate.
    Returns a small summary of what was built.
    """
    state = batch_state(connection)
    old_generation = 0
    if connection.execute(
            "SELECT name FROM sqlite_master WHERE type = 'table' "
            "AND name = 'rollups_meta'").fetchone() is not None:
        old_generation = generation(connection)
    for table in ROLLUP_TABLES:
        connection.execute(f"DROP TABLE IF EXISTS {table}")
    connection.executescript(_SCHEMA)
    connection.executemany(
        "INSERT INTO rollups_totals (name, value) VALUES (?, ?)",
        sorted(state["totals"].items()))
    connection.executemany(
        "INSERT INTO rollups_sites (site_url, visits, js_rows, "
        "http_rows, response_rows, cookie_rows, third_party_requests, "
        "webdriver_probes, crashes, failed, quarantined) "
        "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
        [(url, c["visits"], c["js_rows"], c["http_rows"],
          c["response_rows"], c["cookie_rows"],
          c["third_party_requests"], c["webdriver_probes"],
          c["crashes"], c["failed"], c["quarantined"])
         for url, c in sorted(state["sites"].items())])
    connection.executemany(
        "INSERT INTO rollups_symbols (symbol, operation, count) "
        "VALUES (?, ?, ?)",
        [(sym, op, n) for (sym, op), n
         in sorted(state["symbols"].items())])
    connection.executemany(
        "INSERT INTO rollups_resources (resource_type, is_third_party, "
        "count) VALUES (?, ?, ?)",
        [(rtype, third, n) for (rtype, third), n
         in sorted(state["resources"].items())])
    connection.executemany(
        "INSERT INTO rollups_cookie_hosts (host, count) VALUES (?, ?)",
        sorted(state["cookie_hosts"].items()))
    connection.executemany(
        "INSERT INTO rollups_crashes (action, count) VALUES (?, ?)",
        sorted(state["crashes"].items()))
    connection.executemany(
        "INSERT INTO rollups_drop_reasons (reason, count) "
        "VALUES (?, ?)", sorted(state["drop_reasons"].items()))
    connection.executemany(
        "INSERT INTO rollups_scripts (content_hash, refs) "
        "VALUES (?, ?)", sorted(state["scripts"].items()))
    connection.executemany(
        "INSERT INTO rollups_script_sites (content_hash, site_url, "
        "refs) VALUES (?, ?, ?)",
        [(digest, url, n) for (digest, url), n
         in sorted(state["script_sites"].items())])
    _meta_set(connection, "schema_version", str(ROLLUP_SCHEMA_VERSION))
    _meta_set(connection, "state", "fresh")
    _meta_set(connection, "generation", str(old_generation + 1))
    connection.commit()
    return {
        "schema_version": ROLLUP_SCHEMA_VERSION,
        "generation": old_generation + 1,
        "sites": len(state["sites"]),
        "symbols": len(state["symbols"]),
        "scripts": len(state["scripts"]),
        "totals": state["totals"],
    }


def verify(connection: sqlite3.Connection) -> Dict[str, Any]:
    """Differential check: rollups vs the batch twin, key by key.

    Returns ``{"ok": bool, "state": ..., "mismatches": [...]}`` — the
    core of the equivalence harness and of ``repro serve verify``.
    """
    if not rollups_present(connection):
        return {"ok": False, "state": "absent", "mismatches": [
            {"section": "meta", "key": "schema_version",
             "rollup": None, "batch": ROLLUP_SCHEMA_VERSION}]}
    state = rollup_state(connection)
    truth = batch_state(connection)
    mismatches: List[Dict[str, Any]] = []
    for section in ("totals", "sites", "symbols", "resources",
                    "cookie_hosts", "crashes", "drop_reasons",
                    "scripts", "script_sites"):
        got, want = state[section], truth[section]
        for key in sorted(set(got) | set(want), key=repr):
            if got.get(key) != want.get(key):
                mismatches.append({
                    "section": section, "key": repr(key),
                    "rollup": got.get(key), "batch": want.get(key)})
    return {"ok": not mismatches,
            "state": rollups_state(connection),
            "generation": generation(connection),
            "mismatches": mismatches}

"""Smoke tests: every example script runs end-to-end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=300):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout)
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "visits recorded: 10" in out
        assert "bot-intel verdicts" in out

    def test_fingerprint_surface_audit(self):
        out = run_example("fingerprint_surface_audit.py")
        assert "ubuntu/headless" in out
        assert "detected=True" in out
        assert "detected=False" in out

    def test_attack_and_harden(self):
        out = run_example("attack_and_harden.py")
        assert out.count("SUCCEEDS") >= 5
        assert "database corrupted = False" in out

    def test_tranco_scan(self):
        out = run_example("tranco_scan.py", "--sites", "60")
        assert "Table 5" in out
        assert "ground truth" in out

    def test_paired_crawl_study(self):
        out = run_example("paired_crawl_study.py", "--sites", "80")
        assert "Table 10" in out
        assert "Wilcoxon" in out

    def test_beyond_fingerprints(self):
        out = run_example("beyond_fingerprints.py")
        assert "BOT" in out
        assert "detector verdict: False" in out

"""The full scan pipeline (paper Sec. 4).

Visits every site's front page (and optionally up to three same-site
subpages selected by the eTLD+1 rule), collects scripts and dynamic
evidence through the :class:`ScanExtension`, classifies each site, and
derives the paper's tables and figures:

* Table 5  — static / dynamic / union detector counts, with and
  without false positives / inconclusive iterators;
* Table 6  — OpenWPM-residue probing sites per provider and property;
* Table 7  — third-party detector hosting domains;
* Table 11 — front-page webdriver rates;
* Table 12 — first-party vendor attribution;
* Fig. 3   — front vs subpage detection per rank bucket;
* Fig. 4   — front-page static/dynamic overlap;
* Fig. 5   — categories of sites with first-/third-party detectors.
"""

from __future__ import annotations

import glob
import os
import threading
import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.browser.browser import Browser
from repro.browser.profiles import openwpm_profile
from repro.core.scan.classify import (
    SiteClassification,
    VisitEvidence,
    classify_site,
)
from repro.core.scan.dynamic_analysis import ScanExtension
from repro.corpus import ScriptCorpus, SiteBatch, corpus_path_for
from repro.net.url import URL, etld_plus_one, same_site
from repro.obs.telemetry import Telemetry, coalesce
from repro.web.world import SyntheticWeb

#: Subpage budget per site (paper Sec. 4.1.2).
MAX_SUBPAGES = 3


@dataclass
class ScanDataset:
    """All per-site classifications plus corpus-level bookkeeping."""

    front_only: Dict[str, SiteClassification] = field(default_factory=dict)
    combined: Dict[str, SiteClassification] = field(default_factory=dict)
    #: Content addresses (sha256) of every distinct script collected;
    #: resolve bodies through :attr:`corpus` when sources are needed.
    unique_scripts: Set[str] = field(default_factory=set)
    visited_sites: int = 0
    subpage_visits: int = 0
    #: Raw per-site evidence, kept so ablations can re-classify the
    #: same crawl under different pipeline settings without recrawling.
    #: Script entries are (script_url, sha256) into :attr:`corpus`.
    evidence: Dict[str, List[VisitEvidence]] = field(default_factory=dict)
    #: The content-addressed store backing :attr:`evidence`.
    corpus: Optional[ScriptCorpus] = None

    def script_source(self, digest: str) -> str:
        """Resolve one collected script's body by content address."""
        if self.corpus is None:
            raise RuntimeError("dataset has no corpus attached")
        return self.corpus.source(digest)

    def unique_script_sources(self) -> Dict[str, str]:
        """hash -> source for every distinct collected script."""
        return {digest: self.script_source(digest)
                for digest in sorted(self.unique_scripts)}

    def reclassify(self, use_honey: bool = True,
                   preprocess_static: bool = True,
                   max_visits: Optional[int] = None
                   ) -> Dict[str, SiteClassification]:
        """Re-run classification over the stored evidence.

        ``max_visits`` truncates each site's visit list (1 = front page
        only), enabling the subpage-depth ablation. Static verdicts
        resolve through the corpus's memoized analysis cache, so
        ablation sweeps re-scan each unique script at most once per
        ``preprocess`` setting.
        """
        out: Dict[str, SiteClassification] = {}
        for domain, visits in self.evidence.items():
            subset = visits if max_visits is None else visits[:max_visits]
            out[domain] = classify_site(
                domain, subset, use_honey=use_honey,
                preprocess_static=preprocess_static,
                corpus=self.corpus)
        return out

    # ------------------------------------------------------------------
    # Table 5
    # ------------------------------------------------------------------
    def table5(self) -> Dict[str, Dict[str, int]]:
        counts = {
            "static": 0, "dynamic": 0, "union": 0,
            "static_clean": 0, "dynamic_clean": 0, "union_clean": 0,
        }
        for c in self.combined.values():
            counts["static"] += c.static_identified
            counts["dynamic"] += c.dynamic_identified
            counts["union"] += c.identified_union
            counts["static_clean"] += c.static_clean
            counts["dynamic_clean"] += c.dynamic_clean
            counts["union_clean"] += c.clean_union
        return {"identified": {
                    "static": counts["static"],
                    "dynamic": counts["dynamic"],
                    "union": counts["union"]},
                "clean": {
                    "static": counts["static_clean"],
                    "dynamic": counts["dynamic_clean"],
                    "union": counts["union_clean"]}}

    # ------------------------------------------------------------------
    # Table 6
    # ------------------------------------------------------------------
    def table6(self) -> Dict[str, Dict[str, int]]:
        """Provider host -> {total, per-property counts}."""
        out: Dict[str, Dict[str, int]] = {}
        for classification in self.combined.values():
            per_site: Dict[str, Set[str]] = {}
            for prop, hosts in classification.openwpm_probes.items():
                for host in hosts:
                    provider = etld_plus_one(host)
                    per_site.setdefault(provider, set()).add(prop)
            for provider, props in per_site.items():
                stats = out.setdefault(provider, {"total": 0})
                stats["total"] += 1
                for prop in props:
                    stats[prop] = stats.get(prop, 0) + 1
        return out

    def openwpm_probe_site_count(self) -> int:
        return sum(1 for c in self.combined.values() if c.probes_openwpm)

    # ------------------------------------------------------------------
    # Table 7
    # ------------------------------------------------------------------
    def table7(self, top: int = 10) -> List[Tuple[str, int, float]]:
        counts: Counter = Counter()
        for classification in self.combined.values():
            for host in classification.third_party_hosts:
                counts[host] += 1
        total = sum(counts.values()) or 1
        # third_party_hosts is a set, so most_common's insertion-order
        # tie-break would vary with the per-process hash seed; sort
        # ties by host to keep the table byte-stable across runs.
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return [(host, count, count / total)
                for host, count in ranked[:top]]

    def inclusion_totals(self) -> Tuple[int, int]:
        """(first-party script count, third-party inclusion count)."""
        first = sum(len(c.first_party_scripts)
                    for c in self.combined.values())
        third = sum(len(c.third_party_hosts)
                    for c in self.combined.values())
        return first, third

    # ------------------------------------------------------------------
    # Table 11 / Fig. 4
    # ------------------------------------------------------------------
    def table11(self) -> Dict[str, float]:
        total = max(self.visited_sites, 1)
        static = sum(c.static_clean for c in self.front_only.values())
        dynamic = sum(c.dynamic_clean for c in self.front_only.values())
        union = sum(c.clean_union for c in self.front_only.values())
        return {"static": static, "dynamic": dynamic, "combined": union,
                "static_rate": static / total,
                "dynamic_rate": dynamic / total,
                "combined_rate": union / total}

    def fig4(self) -> Dict[str, int]:
        static = {d for d, c in self.front_only.items() if c.static_clean}
        dynamic = {d for d, c in self.front_only.items() if c.dynamic_clean}
        return {
            "static_only": len(static - dynamic),
            "dynamic_only": len(dynamic - static),
            "both": len(static & dynamic),
            "static_total": len(static),
            "dynamic_total": len(dynamic),
            "union": len(static | dynamic),
        }

    # ------------------------------------------------------------------
    # Table 12
    # ------------------------------------------------------------------
    def table12(self) -> Dict[str, int]:
        counts: Counter = Counter()
        for classification in self.combined.values():
            if classification.has_first_party \
                    and classification.first_party_vendor:
                counts[classification.first_party_vendor] += 1
        return dict(counts)

    # ------------------------------------------------------------------
    # Fig. 3
    # ------------------------------------------------------------------
    def fig3(self, tranco, bucket_size: int = 1000
             ) -> List[Dict[str, int]]:
        """Detector counts per rank bucket, front vs front+sub."""
        rank_of = {site.domain: site.rank for site in tranco}
        buckets: Dict[int, Dict[str, int]] = {}
        for domain, classification in self.combined.items():
            rank = rank_of.get(domain)
            if rank is None:
                continue
            bucket = (rank - 1) // bucket_size
            stats = buckets.setdefault(
                bucket, {"bucket": bucket, "front": 0, "combined": 0,
                         "sites": 0})
            stats["sites"] += 1
            front = self.front_only.get(domain)
            if front is not None and front.clean_union:
                stats["front"] += 1
            if classification.clean_union:
                stats["combined"] += 1
        return [buckets[key] for key in sorted(buckets)]

    # ------------------------------------------------------------------
    def fig5(self, tranco) -> Dict[str, Counter]:
        from repro.core.scan.categories import tally_categories

        first_party = [d for d, c in self.combined.items()
                       if c.clean_union and c.has_first_party]
        third_party = [d for d, c in self.combined.items()
                       if c.clean_union and c.has_third_party]
        return {"first_party": tally_categories(first_party, tranco),
                "third_party": tally_categories(third_party, tranco)}


class ScanPipeline:
    """Runs the crawl and produces a :class:`ScanDataset`."""

    def __init__(self, web: SyntheticWeb, client_id: str = "scan-client",
                 seed: int = 3, dwell: float = 60.0,
                 max_subpages: int = MAX_SUBPAGES,
                 telemetry: Optional[Telemetry] = None,
                 recorder=None) -> None:
        self.web = web
        self.client_id = client_id
        self.seed = seed
        self.telemetry = coalesce(telemetry)
        #: Optional :class:`repro.bundles.BundleRecorder` archiving
        #: every visit into an execution bundle.
        self.recorder = recorder
        if recorder is not None:
            web.network.recorder = recorder
        self.extension = ScanExtension()
        self.browser = Browser(openwpm_profile("ubuntu", "regular"),
                               web.network, client_id=client_id,
                               extension=self.extension, seed=seed)
        self.dwell = dwell
        self.max_subpages = max_subpages
        #: The content-addressed script store of the last run().
        self.corpus: Optional[ScriptCorpus] = None
        #: Serializes dataset mutation across scan workers.
        self._dataset_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(self, site_limit: Optional[int] = None,
            visit_subpages: bool = True, workers: int = 1,
            queue_path: str = ":memory:",
            resume: bool = False,
            worker_procs: Optional[int] = None,
            world_seed: int = 7,
            journal_dir: Optional[str] = None,
            fault_plan: Optional[object] = None,
            heartbeat_deadline: Optional[float] = None,
            respawn_limit: Optional[int] = None,
            shard_dbs: bool = False,
            pin_cpus: bool = False) -> ScanDataset:
        """Scan the corpus; with ``workers > 1`` sites are distributed
        over extra browsers through the crawl scheduler. ``queue_path``
        and ``resume`` expose the scheduler's checkpoint/resume.

        ``worker_procs`` scans through N supervised worker *processes*
        instead (:mod:`repro.sched.procpool`); each rebuilds the
        synthetic world from ``(site_count, world_seed)`` and ships
        evidence envelopes back to this process's single-writer scan
        broker. Requires a file-backed ``queue_path``; incompatible
        with ``workers`` and with a bundle recorder/replay (their
        hooks attach to this process's network object).

        Each site is visited with a fresh per-site browser identity
        (see :meth:`_site_browser`), so the collected script corpus
        and every derived table are independent of ``workers`` and of
        scheduling order.

        Per-site evidence is persisted to a ``<queue_path>.scan``
        sidecar as each job completes, script bodies to a
        ``<queue_path>.corpus`` content-addressed store, and
        ``resume=True`` reloads both — the returned dataset covers
        *every* completed site, not just the ones visited by this
        process. Resuming a queue whose sidecar is missing evidence
        for a completed site — or whose corpus is missing a referenced
        script body — raises rather than silently returning a partial
        (or silently mis-classified) dataset.
        """
        from repro.core.scan.results_store import (
            ScanResultStore,
            store_path_for,
        )
        from repro.sched import CrawlScheduler

        if worker_procs is not None:
            if workers != 1:
                raise ValueError(
                    "workers and worker_procs are mutually exclusive")
            if queue_path == ":memory:":
                raise ValueError(
                    "worker_procs requires a file-backed queue (worker "
                    "processes cannot share an in-memory queue)")
            if self.recorder is not None \
                    or getattr(self.web, "bundle", None) is not None:
                raise ValueError(
                    "worker_procs cannot record or replay bundles: "
                    "the bundle hooks attach to the coordinator's "
                    "network, which worker processes never touch")
        corpus = ScriptCorpus(corpus_path_for(queue_path))
        if not resume:
            corpus.clear()
        self.corpus = corpus
        bundle = getattr(self.web, "bundle", None)
        if bundle is not None:
            # Replaying from an archive: seed this run's memoized
            # static-analysis verdicts from the bundle (keyed by
            # pattern-set version, so stale rows simply never match)
            # and warm the AST cache for every archived script.
            rows = bundle.store.export_analysis_cache()
            if rows:
                corpus.import_analysis_cache(rows)
                bundle.store.precompile(sorted({row[0] for row in rows}))
        dataset = ScanDataset(corpus=corpus)
        configs = self.web.configs if site_limit is None \
            else self.web.configs[:site_limit]
        store = ScanResultStore(store_path_for(queue_path))
        if not resume:
            store.clear()
        clock = None
        if worker_procs is not None:
            # Lease deadlines must mean the same instant to every
            # claimant process; per-process virtual clocks do not.
            from repro.obs.clock import WallClock

            clock = WallClock()
        scheduler = CrawlScheduler(queue_path, resume=resume,
                                   seed=self.seed, max_attempts=1,
                                   telemetry=self.telemetry,
                                   clock=clock)
        scheduler.enqueue([config.domain for config in configs])
        if resume:
            if worker_procs is not None and shard_dbs:
                # A coordinator that died before its end-of-scan fold
                # leaves completed jobs whose evidence exists only in
                # the worker spools; land it in corpus/store first so
                # the restore below sees a complete record (it rebuilds
                # the dataset itself, hence dataset=None here).
                from repro.sched.procpool import fold_scan_spools

                fold_scan_spools(
                    sorted(glob.glob(os.path.join(
                        queue_path + ".shards", "shard-*.sqlite"))),
                    scheduler.queue, corpus, store, None,
                    self.telemetry)
            self._restore_completed(scheduler, store, configs, dataset)
            # Bodies collected by earlier runs are known content: warm
            # the engine's hash-keyed AST/closure cache so any script
            # shared with a still-pending site skips parse+compile.
            corpus.precompile()

        if worker_procs is not None:
            from repro.sched.procpool import (
                DEFAULT_HEARTBEAT_DEADLINE,
                DEFAULT_RESPAWN_LIMIT,
                run_process_scan,
            )

            try:
                run_process_scan(
                    self, scheduler, corpus, store, dataset,
                    queue_path=queue_path, worker_procs=worker_procs,
                    world_seed=world_seed,
                    visit_subpages=visit_subpages,
                    fault_plan=fault_plan, journal_dir=journal_dir,
                    heartbeat_deadline=heartbeat_deadline
                    if heartbeat_deadline is not None
                    else DEFAULT_HEARTBEAT_DEADLINE,
                    respawn_limit=respawn_limit
                    if respawn_limit is not None
                    else DEFAULT_RESPAWN_LIMIT,
                    shard_dbs=shard_dbs, pin_cpus=pin_cpus,
                    resume=resume)
            finally:
                scheduler.close()
                store.close()
            return dataset

        # One attempt token per in-flight (site, worker); corpus rows
        # stay staged until the queue accepts the completion.
        tokens: Dict[Tuple[str, int], str] = {}

        def handler(job, worker_index):
            batch = corpus.site_batch(job.site_url)
            with self._dataset_lock:
                tokens[(job.site_url, worker_index)] = batch.token
            try:
                self._scan_site(job.site_url, dataset, visit_subpages,
                                batch)
            except BaseException:
                corpus.drop_staged(batch.token)
                with self._dataset_lock:
                    tokens.pop((job.site_url, worker_index), None)
                abandon = getattr(self.web.network, "abandon_site", None)
                if abandon is not None:
                    abandon()
                if self.recorder is not None:
                    self.recorder.abandon_site()
                raise
            batch.commit()
            # Persist before the pool marks the job completed, so
            # 'completed in queue' always implies 'evidence on disk'
            # (bodies are staged into the corpus at the same point).
            store.save(job.site_url, dataset.evidence[job.site_url])

        def pop_token(job, worker_index):
            with self._dataset_lock:
                return tokens.pop((job.site_url, worker_index), None)

        def on_completed(job, worker_index):
            token = pop_token(job, worker_index)
            if token is not None:
                corpus.promote(job.site_url, token)

        def on_discard_result(job, worker_index):
            # This attempt's verdict was voided by a lost lease: the
            # winning attempt owns the site's record, so retract the
            # refcounts this one staged.
            token = pop_token(job, worker_index)
            if token is not None:
                corpus.drop_staged(token)

        try:
            scheduler.run(handler, workers=workers,
                          on_completed=on_completed,
                          on_discard_result=on_discard_result)
            if self.recorder is not None:
                # Archive the memoized analysis verdicts so replay can
                # seed its own cache without re-scanning sources.
                self.recorder.absorb_analysis(
                    corpus.export_analysis_cache())
        finally:
            from repro.jsengine.interpreter import export_cache_metrics
            export_cache_metrics(self.telemetry.metrics)
            scheduler.close()
            store.close()
        return dataset

    def _restore_completed(self, scheduler, store, configs,
                           dataset: ScanDataset) -> None:
        """Rebuild dataset entries for sites earlier runs completed."""
        from repro.sched import COMPLETED

        wanted = {config.domain for config in configs}
        completed = [domain for domain
                     in scheduler.queue.sites(status=COMPLETED)
                     if domain in wanted]
        if not completed:
            return
        stored = store.load_all()
        missing = [domain for domain in completed if domain not in stored]
        if missing:
            raise RuntimeError(
                f"cannot resume scan: {len(missing)} completed site(s) "
                f"have no persisted evidence in {store.path!r} "
                f"(e.g. {missing[:3]}); re-run without --resume to "
                "rebuild the dataset from scratch")
        corpus = dataset.corpus
        for domain in completed:
            evidences = stored[domain]
            # A queue crash between completion and corpus promotion
            # leaves the attempt's rows staged; fold them back in.
            corpus.recover_site(domain)
            for visit in evidences:
                for script_url, digest in visit.scripts:
                    if not corpus.has(digest):
                        raise RuntimeError(
                            f"cannot resume scan: completed site "
                            f"{domain!r} references script {digest!r} "
                            f"({script_url}) that is missing from the "
                            f"corpus {corpus.path!r}; re-run without "
                            "--resume to rebuild the dataset from "
                            "scratch")
            with self._dataset_lock:
                dataset.front_only[domain] = classify_site(
                    domain, evidences[:1], corpus=corpus)
                dataset.combined[domain] = classify_site(
                    domain, evidences, corpus=corpus)
                dataset.evidence[domain] = evidences
                dataset.subpage_visits += max(0, len(evidences) - 1)
                dataset.visited_sites += 1
                for visit in evidences:
                    for _, digest in visit.scripts:
                        dataset.unique_scripts.add(digest)

    # ------------------------------------------------------------------
    def _site_browser(self, domain: str
                      ) -> Tuple[Browser, ScanExtension]:
        """A fresh browser + extension bound to a per-site identity.

        The paper's Tranco scan runs OpenWPM stateless — every site
        gets a clean profile. Modelled here as a per-site network
        client and a domain-derived seed, which makes each site's
        served content a pure function of (world, domain, seed): the
        collected corpus is byte-identical regardless of worker count
        or visit order, and cloaking providers cannot leak one site's
        bot verdict into another site's measurement.
        """
        extension = ScanExtension()
        site_seed = (self.seed * 1_000_003
                     + zlib.crc32(domain.encode())) & 0x7FFFFFFF
        browser = Browser(openwpm_profile("ubuntu", "regular"),
                          self.web.network,
                          client_id=f"{self.client_id}:{domain}",
                          extension=extension, seed=site_seed)
        return browser, extension

    def _scan_site(self, domain: str, dataset: ScanDataset,
                   visit_subpages: bool, batch: SiteBatch) -> None:
        tm = self.telemetry
        corpus = dataset.corpus
        browser, extension = self._site_browser(domain)
        with tm.tracer.span("scan_site", domain=domain) as site_span:
            front_evidence = self._visit(f"https://www.{domain}/",
                                         browser, extension, batch,
                                         site=domain)
            evidences = [front_evidence]
            front_classification = classify_site(domain, [front_evidence],
                                                 corpus=corpus)
            subpage_count = 0
            if visit_subpages:
                for link in self._select_subpages(front_evidence, browser):
                    evidences.append(self._visit(link, browser,
                                                 extension, batch,
                                                 site=domain))
                    subpage_count += 1
                    tm.metrics.counter("scan_subpage_visits").inc()
            with tm.stage("classify"):
                classification = classify_site(domain, evidences,
                                               corpus=corpus)
            if self.recorder is not None:
                self.recorder.finish_site(
                    domain, front=front_classification,
                    combined=classification, evidence=evidences)
            with self._dataset_lock:
                dataset.front_only[domain] = front_classification
                dataset.combined[domain] = classification
                dataset.evidence[domain] = evidences
                dataset.subpage_visits += subpage_count
                dataset.visited_sites += 1
                for visit in evidences:
                    for _, digest in visit.scripts:
                        dataset.unique_scripts.add(digest)
            tm.metrics.counter("scan_sites_visited").inc()
            outcome = "identified" if classification.identified_union \
                else "negative"
            tm.metrics.counter("classifier_outcomes",
                               outcome=outcome).inc()
            if classification.clean_union:
                tm.metrics.counter("classifier_outcomes",
                                   outcome="clean").inc()
            site_span.set_attribute("outcome", outcome)

    # ------------------------------------------------------------------
    def _visit(self, url: str, browser: Optional[Browser] = None,
               extension: Optional[ScanExtension] = None,
               batch: Optional[SiteBatch] = None,
               site: Optional[str] = None) -> VisitEvidence:
        browser = browser if browser is not None else self.browser
        extension = extension if extension is not None else self.extension
        extension.clear_records()
        if site is not None:
            # Replay transport first (positions its visit cursor), then
            # the recorder (opens this visit's archive buffer).
            begin = getattr(self.web.network, "begin_visit", None)
            if begin is not None:
                begin(site, url)
            if self.recorder is not None:
                self.recorder.begin_visit(site, url)
        with self.telemetry.stage("scan_visit"):
            result = browser.visit(url, wait=self.dwell)
        evidence = VisitEvidence(page_url=url)
        if batch is not None:
            # Bodies dedup into the content-addressed corpus; evidence
            # carries hashes, one batched write per visit.
            evidence.scripts = extension.script_refs(batch)
            batch.flush_visit()
        else:
            evidence.scripts = extension.collected_scripts()
        if extension.js_instrument is not None:
            for record in extension.js_instrument.records:
                if record.symbol == "navigator.webdriver" \
                        and record.operation == "get":
                    evidence.webdriver_accessors.add(record.script_url)
        for access in extension.residue_accesses():
            evidence.residue_accessors.setdefault(
                access.script_url, set()).add(access.property_name)
        evidence.honey_hits = extension.honey_hits_by_script()
        if site is not None:
            end = getattr(self.web.network, "end_visit", None)
            if end is not None:
                end()
            if self.recorder is not None:
                trace = list(extension.js_instrument.records) \
                    if extension.js_instrument is not None else []
                self.recorder.end_visit(trace=trace)
        return evidence

    def _select_subpages(self, evidence: VisitEvidence,
                         browser: Optional[Browser] = None) -> List[str]:
        """Same-site links only (eTLD+1), after following redirects."""
        browser = browser if browser is not None else self.browser
        result_links: List[str] = []
        base = URL.parse(evidence.page_url)
        page = None
        top = browser._top_window  # the visit that produced evidence
        if top is not None and top.page is not None:
            page = top.page
        if page is None:
            return result_links
        for href in page.links():
            try:
                target = URL.parse(href, base=base)
            except ValueError:
                continue
            if not same_site(target.host, base.host):
                continue
            result_links.append(str(target))
            if len(result_links) >= self.max_subpages:
                break
        return result_links
